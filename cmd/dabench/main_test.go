package main

import (
	"dabench/internal/experiments"
	"dabench/internal/platform"
	"dabench/internal/provenance"
	"dabench/internal/store"

	dabench "dabench"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestRunProfile(t *testing.T) {
	args := []string{"profile", "-platform", "rdu", "-model", "gpt2-small",
		"-layers", "8", "-batch", "4", "-precision", "bf16", "-mode", "O3"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"profile", "-platform", "nope"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"profile", "-model", "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"profile", "-precision", "int4"}); err == nil {
		t.Error("unknown precision accepted")
	}
	if err := run([]string{"profile", "-platform", "rdu", "-mode", "O7"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunExperimentsSelection(t *testing.T) {
	if err := run([]string{"experiments", "table4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"experiments", "-csv", "table1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"experiments", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentsProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"experiments", "-q", "-cpuprofile", cpu, "-memprofile", mem, "table1"}); err != nil {
		if strings.Contains(err.Error(), "cpu profiling already in use") {
			t.Skip("test binary is running under go test -cpuprofile")
		}
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := run([]string{"experiments", "-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x"), "table1"}); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}

func TestRunExperimentsFlagValidation(t *testing.T) {
	if err := run([]string{"experiments", "-parallel", "0", "table1"}); err == nil {
		t.Error("-parallel 0 accepted")
	}
	if err := run([]string{"experiments", "-parallel", "100000", "table1"}); err == nil {
		t.Error("-parallel above sweep.MaxWorkers accepted")
	}
	dir := t.TempDir()
	if err := run([]string{"experiments", "-trace", dir, "table1"}); err == nil || !strings.Contains(err.Error(), "directory") {
		t.Errorf("-trace pointing at a directory not rejected clearly: %v", err)
	}
}

func TestRunAnalyze(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")

	// Produce a real trace via the experiments pipeline, then analyze it.
	if err := run([]string{"experiments", "-q", "-trace", path, "table1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", "-csv", path}); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"analyze"}); err == nil {
		t.Error("analyze without a file accepted")
	}
	if err := run([]string{"analyze", filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("analyze of a missing file accepted")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", empty}); err == nil || !strings.Contains(err.Error(), "no trace records") {
		t.Errorf("empty trace not rejected clearly: %v", err)
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", bad}); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestHelpAndDefault(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestPickPlatformAliases(t *testing.T) {
	for _, name := range []string{"wse", "cerebras", "rdu", "sambanova", "ipu", "graphcore", "gpu", "a100"} {
		if _, err := pickPlatform(name); err != nil {
			t.Errorf("alias %q rejected: %v", name, err)
		}
	}
}

func TestScenarioCommands(t *testing.T) {
	if err := run([]string{"scenario", "list"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scenario"}); err == nil {
		t.Error("bare scenario accepted")
	}
	if err := run([]string{"scenario", "bogus"}); err == nil {
		t.Error("unknown scenario subcommand accepted")
	}
	if err := run([]string{"scenario", "run"}); err == nil {
		t.Error("scenario run without an argument accepted")
	}
	if err := run([]string{"scenario", "run", "no-such-scenario"}); err == nil {
		t.Error("unknown scenario name accepted")
	}
	if err := run([]string{"scenario", "run", "-parallel", "0", "rdu-build-modes"}); err == nil {
		t.Error("-parallel 0 accepted")
	}
	if err := run([]string{"scenario", "run", "-q", "rdu-build-modes"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scenario", "run", "-q", "-csv", "rdu-build-modes"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "study.json")
	doc := `{"version":1,"name":"file-study","platforms":["wse"],` +
		`"base":{"model":"gpt2-small"},"grid":{"layers":[2,4]}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scenario", "run", "-q", path}); err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scenario", "run", "-q", bad}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong-version scenario not rejected clearly: %v", err)
	}
}

// TestScenarioDataDirPersists: a scenario run with -data-dir lands its
// compile/run outcomes in the shared content-addressed store, exactly
// like the experiments subcommand and the daemon.
func TestScenarioDataDirPersists(t *testing.T) {
	dir := t.TempDir()
	experiments.ResetCaches()
	if err := run([]string{"scenario", "run", "-q", "-data-dir", dir, "rdu-build-modes"}); err != nil {
		t.Fatal(err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "store", "*", "*.json")); len(entries) == 0 {
		t.Fatal("scenario run persisted nothing under <data-dir>/store")
	}
}

// TestDataDirSharesStoreAcrossRuns is the CLI half of the durability
// story: a second CLI invocation pointed at the same -data-dir (after
// the in-memory caches are gone, as across processes) must answer from
// the persistent store instead of recompiling.
func TestDataDirSharesStoreAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	experiments.ResetCaches()
	if err := run([]string{"experiments", "-q", "-data-dir", dir, "table1"}); err != nil {
		t.Fatal(err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "store", "*", "*.json")); len(entries) == 0 {
		t.Fatal("first run persisted nothing under <data-dir>/store")
	}

	// "New process": drop every in-memory tier, keep the disk. A
	// second CLI-style run must still succeed end to end...
	experiments.ResetCaches()
	if err := run([]string{"experiments", "-q", "-data-dir", dir, "table1"}); err != nil {
		t.Fatal(err)
	}

	// ...and a store mounted over the same dir must answer every unique
	// table1 spec without a single miss (i.e. zero recompiles).
	experiments.ResetCaches()
	st2, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	experiments.SetResultStore(st2)
	defer func() {
		experiments.SetResultStore(nil)
		st2.Close()
	}()
	if _, err := dabench.RunExperiment("table1"); err != nil {
		t.Fatal(err)
	}
	s := st2.Stats()
	if s.Hits == 0 || s.Misses != 0 {
		t.Errorf("warm run store stats = %d hits / %d misses, want all hits", s.Hits, s.Misses)
	}
}

// chainedStore opens a store in dir with the provenance hook mounted —
// the same wiring mountStore and the daemon use — and writes the given
// spec-key → platform blobs through it.
func chainedStore(t *testing.T, dir string, blobs map[string]string) {
	t.Helper()
	prov, err := provenance.Open(filepath.Join(dir, "provenance.log"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenOptions(filepath.Join(dir, "store"), store.Options{
		OnWrite: func(ev store.WriteEvent) {
			prov.Append(ev.Addr, ev.Platform, ev.SpecKey, store.PipelineVersion)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for key, pn := range blobs {
		st.Store(pn, key, platform.Stored{Failed: true, FailReason: "test blob"})
	}
	st.Close() // flushes the write-behind queue, firing the hook
	prov.Close()
}

func TestProvenanceVerifyOK(t *testing.T) {
	dir := t.TempDir()
	chainedStore(t, dir, map[string]string{"spec-a": "WSE-2", "spec-b": "SN30"})
	if err := runProvenance([]string{"verify", "-data-dir", dir}); err != nil {
		t.Fatalf("verify of an intact chain failed: %v", err)
	}
}

// TestProvenanceVerifyTampered pins the contract the chain exists for:
// mutating one interior record makes verification fail loudly.
func TestProvenanceVerifyTampered(t *testing.T) {
	dir := t.TempDir()
	chainedStore(t, dir, map[string]string{"spec-a": "WSE-2", "spec-b": "SN30"})
	path := filepath.Join(dir, "provenance.log")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"pipeline_version":1`, `"pipeline_version":9`, 1)
	if tampered == string(b) {
		t.Fatal("tamper target not found in chain file")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	err = runProvenance([]string{"verify", "-data-dir", dir})
	if err == nil {
		t.Fatal("verify accepted a tampered record")
	}
	if !strings.Contains(err.Error(), "tampered") && !strings.Contains(err.Error(), "chain broken") {
		t.Errorf("tamper error %q does not name the damage", err)
	}
}

// TestProvenanceVerifyUnchainedBlob: a blob on disk with no chain
// record (written outside the hook) must fail the cross-check.
func TestProvenanceVerifyUnchainedBlob(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenOptions(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Store("WSE-2", "spec-rogue", platform.Stored{Failed: true, FailReason: "test blob"})
	st.Close()
	err = runProvenance([]string{"verify", "-data-dir", dir})
	if err == nil || !strings.Contains(err.Error(), "unaccounted") {
		t.Errorf("verify of an unchained blob = %v, want unaccounted-for failure", err)
	}
}

// TestProvenanceVerifyEmpty: a data dir that was never written to
// verifies clean (empty chain, no blobs).
func TestProvenanceVerifyEmpty(t *testing.T) {
	if err := runProvenance([]string{"verify", "-data-dir", t.TempDir()}); err != nil {
		t.Fatalf("verify of an empty data dir failed: %v", err)
	}
}

func TestProvenanceUsage(t *testing.T) {
	if err := run([]string{"provenance"}); err == nil {
		t.Error("bare provenance command should fail with usage")
	}
	if err := run([]string{"provenance", "verify"}); err == nil {
		t.Error("verify without -data-dir should fail")
	}
}

// TestExperimentsChainProvenance: a real CLI run with -data-dir leaves
// behind a chain that verifies against the store it shadowed.
func TestExperimentsChainProvenance(t *testing.T) {
	dir := t.TempDir()
	experiments.ResetCaches()
	if err := run([]string{"experiments", "-q", "-data-dir", dir, "table1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"provenance", "verify", "-data-dir", dir}); err != nil {
		t.Fatalf("chain left by an experiments run failed verification: %v", err)
	}
}

func TestVersionCommand(t *testing.T) {
	for _, arg := range []string{"version", "-version", "--version"} {
		if err := run([]string{arg}); err != nil {
			t.Errorf("%s: %v", arg, err)
		}
	}
}
