// Command dabench runs the DABench-LLM benchmarking framework from the
// command line: Tier-1 profiles, Tier-2 sweeps, and the reproduction of
// every table and figure in the paper.
//
// Usage:
//
//	dabench experiments [-parallel N] [id ...]   reproduce paper tables/figures (default: all)
//	dabench profile -platform wse -model gpt2-small [-layers N] [-batch B]
//	dabench scenario run <file|name>             execute a declarative multi-platform study
//	dabench scenario list                        list the built-in scenario library
//	dabench analyze [-csv] trace.jsonl           summarize a saved -trace record stream
//	dabench provenance verify -data-dir DIR      verify the result-store provenance chain
//	         [-peer URL -node-id NAME]           ...and cross-check it against a cluster peer's remembered tip
//	dabench list                                 list platforms, models and experiment IDs
//	dabench version                              print the build version
//
// Add -csv to print CSV instead of aligned text. Experiment sweeps fan
// out over -parallel workers (default: all cores) through the shared
// graph/compile/run caches; per-experiment wall-clock and per-tier
// cache hit/miss stats go to stderr so they never pollute the table
// streams. -cpuprofile and -memprofile write pprof profiles so perf
// work on the pipeline stays measurement-driven.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dabench/internal/cluster"
	"dabench/internal/core"
	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/provenance"
	"dabench/internal/report"
	"dabench/internal/scenario"
	"dabench/internal/store"
	"dabench/internal/sweep"
	"dabench/internal/trace"
	"dabench/internal/version"

	dabench "dabench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		args = []string{"experiments"}
	}
	switch args[0] {
	case "experiments":
		return runExperiments(args[1:])
	case "profile":
		return runProfile(args[1:])
	case "scenario":
		return runScenario(args[1:])
	case "analyze":
		return runAnalyze(args[1:])
	case "provenance":
		return runProvenance(args[1:])
	case "list":
		return runList()
	case "version", "-version", "--version":
		fmt.Println("dabench", version.Version)
		return nil
	case "-h", "--help", "help":
		fmt.Println("usage: dabench {experiments [id ...] | profile [flags] | scenario {run <file|name> | list} | analyze [-csv] file | provenance verify -data-dir DIR | list | version}")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: experiments, profile, scenario, analyze, provenance, list, version)", args[0])
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV")
	traceOut := fs.String("trace", "", "append raw measurement records (JSON lines) to this file")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size (1 = serial)")
	quiet := fs.Bool("q", false, "suppress per-experiment timing/cache stats on stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	dataDir := fs.String("data-dir", "", "persistent result-store directory (share it with dabenchd's -data-dir to reuse its results)")
	storeBudget := fs.Int64("store-budget", 256<<20, "result-store on-disk byte budget (LRU eviction; <= 0 = unbounded)")
	faultSpec := fs.String("fault-spec", "", "fault-injection spec: inline JSON or a file path (requires -allow-faults)")
	allowFaults := fs.Bool("allow-faults", false, "acknowledge that -fault-spec deliberately injects failures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 || *parallel > sweep.MaxWorkers {
		return fmt.Errorf("-parallel must be in [1, %d], got %d", sweep.MaxWorkers, *parallel)
	}
	inj, unarm, err := armFaults(*faultSpec, *allowFaults)
	if err != nil {
		return err
	}
	defer unarm()
	if *traceOut != "" {
		if fi, err := os.Stat(*traceOut); err == nil && fi.IsDir() {
			return fmt.Errorf("-trace %q is a directory, want a file path", *traceOut)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // flush unreachable allocations so the profile reflects live + cumulative alloc sites
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dabench: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dabench: memprofile:", err)
			}
		}()
	}
	sweep.SetDefaultWorkers(*parallel)
	defer sweep.SetDefaultWorkers(0)
	st, unmount, err := mountStore(*dataDir, *storeBudget, inj)
	if err != nil {
		return err
	}
	defer unmount()
	ids := fs.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	var tw *trace.Writer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = trace.NewWriter(f)
	}
	all := experiments.All()
	for _, id := range ids {
		runner, ok := all[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (valid: %s)", id, strings.Join(experiments.IDs(), ", "))
		}
		res, err := runner(context.Background())
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if !*quiet {
			s, r, g := res.Cache, res.RunCache, res.GraphCache
			fmt.Fprintf(os.Stderr, "# %-8s %8.2fms wall (%d workers) · compile cache %d/%d hits (%.0f%%) · run cache %d/%d · graph cache %d/%d\n",
				id, float64(res.Elapsed.Microseconds())/1000, *parallel,
				s.Hits, s.Hits+s.Misses, 100*s.HitRate(),
				r.Hits, r.Hits+r.Misses, g.Hits, g.Hits+g.Misses)
		}
		// Render is shared with the HTTP server's /v1/experiments
		// endpoint — the same code path is what keeps the two outputs
		// byte-identical (CI diffs them).
		if err := res.Render(os.Stdout, *csv); err != nil {
			return err
		}
		if tw != nil {
			for _, rec := range res.Trace {
				if err := tw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	if !*quiet {
		total := experiments.CacheStats()
		run := experiments.RunCacheStats()
		g := experiments.GraphCacheStats()
		fmt.Fprintf(os.Stderr, "# total: compile cache %d/%d hits (%.0f%%) · run cache %d/%d · graph cache %d/%d across %d experiments\n",
			total.Hits, total.Hits+total.Misses, 100*total.HitRate(),
			run.Hits, run.Hits+run.Misses, g.Hits, g.Hits+g.Misses, len(ids))
		if st != nil {
			st.Snapshot() // land the write-behind queue so the gauges reflect this run
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "# store: %d/%d hits · %d entries · %d bytes in %s\n",
				s.Hits, s.Hits+s.Misses, s.Entries, s.Bytes, *dataDir)
		}
	}
	return nil
}

// mountStore installs the persistent result store under the shared
// platforms when a data dir is given. The CLI mounts the same
// content-addressed layout the daemon uses under <data-dir>/store, so
// a CLI run after a daemon sweep (or vice versa) reuses the other's
// results. Every blob write appends to the same provenance chain the
// daemon maintains, so mixed CLI/daemon histories verify as one chain.
// The cleanup unmounts and flushes; it is safe to call when no store
// was mounted.
func mountStore(dataDir string, budget int64, inj *faults.Injector) (*store.Store, func(), error) {
	if dataDir == "" {
		return nil, func() {}, nil
	}
	prov, err := provenance.Open(filepath.Join(dataDir, "provenance.log"))
	if err != nil {
		return nil, nil, fmt.Errorf("provenance chain at %s is broken — investigate before writing more results (or move the file aside to start a fresh chain): %w",
			filepath.Join(dataDir, "provenance.log"), err)
	}
	st, err := store.OpenOptions(filepath.Join(dataDir, "store"),
		store.Options{Budget: budget, Injector: inj,
			OnWrite: func(ev store.WriteEvent) {
				prov.Append(ev.Addr, ev.Platform, ev.SpecKey, store.PipelineVersion)
			}})
	if err != nil {
		prov.Close()
		return nil, nil, err
	}
	experiments.SetResultStore(st)
	return st, func() {
		experiments.SetResultStore(nil)
		st.Close() // flushes the write-behind queue, appending its last records
		prov.Close()
	}, nil
}

// runProvenance dispatches the provenance subcommands. The chain is the
// tamper-evident companion of the result store: every blob the store
// persists appends one hash-linked record, and verify replays both
// halves against each other — the chain must hash-link end to end, and
// every blob on disk must be claimed by a record that agrees on its
// identity. (The converse is not required: evicted blobs legitimately
// live on as chain-only records.)
func runProvenance(args []string) error {
	if len(args) == 0 || args[0] != "verify" {
		return errors.New("usage: dabench provenance verify -data-dir DIR [-peer URL -node-id NAME]")
	}
	fs := flag.NewFlagSet("provenance verify", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "durable state directory whose chain and store to verify")
	peerURL := fs.String("peer", "", "base URL of a cluster peer whose gossip-remembered view of this node anchors the check")
	peerNodeID := fs.String("node-id", "", "this node's cluster name in the peer's view (required with -peer)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("provenance verify: -data-dir is required")
	}
	if (*peerURL == "") != (*peerNodeID == "") {
		return errors.New("provenance verify: -peer and -node-id go together")
	}
	res, err := provenance.VerifyFile(filepath.Join(*dataDir, "provenance.log"))
	if err != nil {
		return fmt.Errorf("provenance chain FAILED verification: %w", err)
	}
	var blobs, bad int
	err = store.ScanBlobs(filepath.Join(*dataDir, "store"),
		func(addr, platformName, specKey string, ver int) error {
			blobs++
			if platformName == "" {
				bad++
				fmt.Fprintf(os.Stderr, "dabench: blob %s is unreadable or undecodable\n", addr)
				return nil
			}
			rec, ok := res.ByAddr[addr]
			switch {
			case !ok:
				bad++
				fmt.Fprintf(os.Stderr, "dabench: blob %s has no provenance record (written outside the chain?)\n", addr)
			case rec.Platform != platformName || rec.SpecKey != specKey || rec.PipelineVersion != ver:
				bad++
				fmt.Fprintf(os.Stderr, "dabench: blob %s disagrees with its record: disk (%s, %s, v%d) vs chain (%s, %s, v%d)\n",
					addr, platformName, specKey, ver, rec.Platform, rec.SpecKey, rec.PipelineVersion)
			}
			return nil
		})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("provenance verify FAILED: %d of %d blobs unaccounted for or mismatched", bad, blobs)
	}
	fmt.Printf("provenance OK: %d records, %d blobs verified, tip %s\n", res.Records, blobs, res.TipHash)
	if *peerURL != "" {
		return verifyPeerTip(*peerURL, *peerNodeID, res)
	}
	return nil
}

// verifyPeerTip cross-checks the locally-verified chain against a
// cluster peer's memory of it. Gossip makes every peer remember the tip
// hash this node last advertised; a tip commits to the node's entire
// write history, so the remembered hash must be the current tip or one
// of its ancestors. A chain that was rewritten or truncated after the
// peer observed it cannot contain that hash — which is exactly the
// attack a purely local verification cannot see (replace the whole
// file, and every link still checks out).
func verifyPeerTip(peerURL, nodeID string, res *provenance.VerifyResult) error {
	u := strings.TrimRight(peerURL, "/") + "/v1/gossip"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return fmt.Errorf("provenance verify: peer gossip: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("provenance verify: peer %s answered %s", u, resp.Status)
	}
	var gr cluster.GossipResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		return fmt.Errorf("provenance verify: peer gossip: %w", err)
	}
	var view *cluster.PeerView
	for i := range gr.Peers {
		if gr.Peers[i].ID == nodeID {
			view = &gr.Peers[i]
			break
		}
	}
	if view == nil {
		return fmt.Errorf("provenance verify: peer at %s does not know a node %q (check -node-id against the fleet's -peers)", peerURL, nodeID)
	}
	if view.ChainTip == "" {
		fmt.Printf("peer anchor: %s has not yet observed a chain tip for %s — nothing to cross-check\n", peerURL, nodeID)
		return nil
	}
	if !res.Hashes[view.ChainTip] {
		return fmt.Errorf("provenance verify FAILED: peer %s remembers tip %.12s (at %d records), which is not in this chain — chain rewritten or truncated since the peer observed it",
			peerURL, view.ChainTip, view.ChainRecords)
	}
	fmt.Printf("peer anchor OK: %s remembers tip %.12s (at %d records), present in this chain\n",
		peerURL, view.ChainTip, view.ChainRecords)
	return nil
}

// armFaults loads a -fault-spec and installs it on the shared compile
// path; the injector is also handed to mountStore so the store's I/O
// sites fire from the same rule set. Like the daemon, the CLI refuses
// a spec without the explicit -allow-faults acknowledgement.
func armFaults(spec string, allow bool) (*faults.Injector, func(), error) {
	if spec == "" {
		return nil, func() {}, nil
	}
	if !allow {
		return nil, nil, errors.New("-fault-spec injects failures on purpose; pass -allow-faults to confirm")
	}
	inj, err := faults.Load(spec)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "dabench: FAULT INJECTION ACTIVE (%d rules, seed %d)\n",
		len(inj.Stats().Rules), inj.Stats().Seed)
	experiments.SetFaultInjector(inj)
	return inj, func() { experiments.SetFaultInjector(nil) }, nil
}

// runScenario dispatches the scenario subcommands: the declarative
// multi-platform studies of internal/scenario.
func runScenario(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: dabench scenario {run [flags] <file|name> | list}")
	}
	switch args[0] {
	case "run":
		return runScenarioRun(args[1:])
	case "list":
		for _, sc := range scenario.Library() {
			n, err := sc.Points()
			if err != nil {
				return err
			}
			fmt.Printf("%-26s %3d points on %-18s %s\n",
				sc.Name, n, strings.Join(sc.Platforms, ","), sc.Description)
		}
		return nil
	default:
		return fmt.Errorf("unknown scenario command %q (try: run, list)", args[0])
	}
}

// runScenarioRun executes one scenario — a built-in library name or a
// JSON document on disk — and renders it through the same shared path
// the daemon uses, so the two outputs are byte-identical (CI diffs
// them).
func runScenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size (1 = serial)")
	quiet := fs.Bool("q", false, "suppress timing/cache stats on stderr")
	dataDir := fs.String("data-dir", "", "persistent result-store directory (share it with dabenchd's -data-dir to reuse its results)")
	storeBudget := fs.Int64("store-budget", 256<<20, "result-store on-disk byte budget (LRU eviction; <= 0 = unbounded)")
	faultSpec := fs.String("fault-spec", "", "fault-injection spec: inline JSON or a file path (requires -allow-faults)")
	allowFaults := fs.Bool("allow-faults", false, "acknowledge that -fault-spec deliberately injects failures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 || *parallel > sweep.MaxWorkers {
		return fmt.Errorf("-parallel must be in [1, %d], got %d", sweep.MaxWorkers, *parallel)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dabench scenario run [flags] <file|name> (got %d args)", fs.NArg())
	}
	inj, unarm, err := armFaults(*faultSpec, *allowFaults)
	if err != nil {
		return err
	}
	defer unarm()
	arg := fs.Arg(0)
	sc, ok := scenario.ByName(arg)
	if !ok {
		data, err := os.ReadFile(arg)
		if err != nil {
			return fmt.Errorf("%q is neither a library scenario (try: dabench scenario list) nor a readable file: %w", arg, err)
		}
		if sc, err = scenario.Parse(data); err != nil {
			return err
		}
	}

	sweep.SetDefaultWorkers(*parallel)
	defer sweep.SetDefaultWorkers(0)
	st, unmount, err := mountStore(*dataDir, *storeBudget, inj)
	if err != nil {
		return err
	}
	defer unmount()

	start := time.Now()
	before := experiments.CacheStats()
	out, err := scenario.Run(context.Background(), sc, scenario.RunOptions{})
	if err != nil {
		return err
	}
	if !*quiet {
		d := experiments.CacheStats().Sub(before)
		fmt.Fprintf(os.Stderr, "# %-26s %8.2fms wall (%d workers) · %d points × %d platforms · %d failed · compile cache %d/%d hits (%.0f%%)\n",
			sc.Name, float64(time.Since(start).Microseconds())/1000, *parallel,
			out.GridPoints, len(out.Platforms), out.Failed,
			d.Hits, d.Hits+d.Misses, 100*d.HitRate())
		if st != nil {
			st.Snapshot()
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "# store: %d/%d hits · %d entries · %d bytes in %s\n",
				s.Hits, s.Hits+s.Misses, s.Entries, s.Bytes, *dataDir)
		}
	}
	return out.Render(os.Stdout, *csv)
}

func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	plat := fs.String("platform", "wse", "wse | rdu | ipu | gpu")
	mdl := fs.String("model", "gpt2-small", "model preset name")
	layers := fs.Int("layers", 0, "override layer count")
	batch := fs.Int("batch", 512, "batch size")
	seq := fs.Int("seq", 1024, "sequence length")
	prec := fs.String("precision", "FP16", "FP32 | FP16 | BF16 | CB16 | Mixed")
	mode := fs.String("mode", "", "RDU compile mode: O0 | O1 | O3")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := pickPlatform(*plat)
	if err != nil {
		return err
	}
	cfg, ok := model.ByName(*mdl)
	if !ok {
		return fmt.Errorf("unknown model %q (try: dabench list)", *mdl)
	}
	if *layers > 0 {
		cfg = cfg.WithLayers(*layers)
	}
	f, err := precision.Parse(*prec)
	if err != nil {
		return err
	}
	spec := platform.TrainSpec{Model: cfg, Batch: *batch, Seq: *seq, Precision: f}
	m, err := platform.ParseMode(*mode)
	if err != nil {
		return err
	}
	spec.Par.Mode = m

	prof, err := core.Profile(p, spec)
	if err != nil {
		return err
	}
	fmt.Println(prof.Summary())
	tbl := report.New("Insights", "#", "Finding")
	for i, ins := range prof.Insights {
		tbl.Add(fmt.Sprint(i+1), ins)
	}
	return tbl.WriteText(os.Stdout)
}

// runAnalyze summarizes a JSONL record stream saved with
// `experiments -trace` (the library's trace.Analyze, previously
// reachable only programmatically).
func runAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dabench analyze [-csv] trace.jsonl (got %d args)", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no trace records", fs.Arg(0))
	}
	sums := trace.Analyze(recs)
	tbl := report.New(fmt.Sprintf("Trace analysis — %d records, %d groups", len(recs), len(sums)),
		"Experiment", "Platform", "Metric", "Count", "Failures", "Min", "Mean", "Max")
	for _, s := range sums {
		tbl.Add(s.Experiment, s.Platform, s.Metric, fmt.Sprint(s.Count), fmt.Sprint(s.Failures),
			report.F(s.Min), report.F(s.Mean), report.F(s.Max))
	}
	if *csv {
		return tbl.WriteCSV(os.Stdout)
	}
	return tbl.WriteText(os.Stdout)
}

func pickPlatform(name string) (platform.Platform, error) {
	switch strings.ToLower(name) {
	case "wse", "wse-2", "cerebras":
		return dabench.NewWSE(), nil
	case "rdu", "sn30", "sambanova":
		return dabench.NewRDU(), nil
	case "ipu", "bow", "graphcore":
		return dabench.NewIPU(), nil
	case "gpu", "a100":
		return dabench.NewGPU(), nil
	default:
		return nil, fmt.Errorf("unknown platform %q", name)
	}
}

func runList() error {
	fmt.Println("platforms: wse, rdu, ipu, gpu")
	fmt.Print("models:")
	for _, m := range model.Presets() {
		fmt.Printf(" %s", m.Name)
	}
	fmt.Println()
	fmt.Println("experiments:", strings.Join(experiments.IDs(), ", "))
	fmt.Println("scenarios:", strings.Join(scenario.Names(), ", "))
	return nil
}
