package main

import (
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero parallel", []string{"-parallel", "0"}, "-parallel"},
		{"negative parallel", []string{"-parallel", "-3"}, "-parallel"},
		{"huge parallel", []string{"-parallel", "100000"}, "-parallel"},
		{"negative inflight", []string{"-max-inflight", "-1"}, "-max-inflight"},
		{"zero timeout", []string{"-timeout", "0s"}, "-timeout"},
		{"zero drain", []string{"-drain-timeout", "0s"}, "-timeout"},
		{"zero sweep points", []string{"-max-sweep-points", "0"}, "-max-sweep-points"},
		{"negative job workers", []string{"-job-workers", "-1"}, "-job-workers"},
		{"huge job workers", []string{"-job-workers", "100000"}, "-job-workers"},
		{"zero job points", []string{"-max-job-points", "0"}, "-max-job-points"},
		{"negative chunk retries", []string{"-chunk-retries", "-1"}, "-chunk-retries"},
		{"stray argument", []string{"stray"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestListenFailureSurfaces(t *testing.T) {
	// An unbindable address must fail fast, not hang in Serve.
	if err := run([]string{"-addr", "256.256.256.256:0"}); err == nil {
		t.Error("unbindable address accepted")
	}
}
