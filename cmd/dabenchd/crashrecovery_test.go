package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dabench/internal/jobs"
	"dabench/internal/server"
)

// buildDaemon compiles the dabenchd binary once per test run. The
// crash-recovery test needs a real process it can SIGKILL — an
// httptest.Server shares the test's lifetime and cannot model losing
// in-memory state the way an abrupt process death does.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dabenchd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one live dabenchd process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon boots bin on an ephemeral port and waits for the
// "listening on" banner, which is printed only after net.Listen
// succeeds — so returning implies the API is reachable.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.Fields(line[i+len("listening on "):])[0]:
				default:
				}
			}
		}
		// Keep draining so the daemon never blocks on a full pipe.
	}()
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never printed its listen address")
	}
	return d
}

// drain sends SIGTERM and waits for the graceful-shutdown path (which
// flushes the store's write-behind queue).
func (d *daemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly on SIGTERM: %v", err)
	}
}

func (d *daemon) get(t *testing.T, path string, out any) []byte {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("GET %s: %v: %s", path, err, b)
		}
	}
	return b
}

func (d *daemon) post(t *testing.T, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestCrashRecoveryResumesJobs is the crash-recovery acceptance:
// SIGKILL the daemon mid-job, restart it on the same -data-dir, and
// the journal replay must finish the job — every point exactly once —
// while the persistent store keeps serving what the previous
// incarnations computed.
func TestCrashRecoveryResumesJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "state")

	// Phase 1: warm the store with a small sync sweep, then drain
	// gracefully so the write-behind queue is flushed to disk. The spec
	// is disjoint from the job below (different platform) so phase 3's
	// store-hit accounting is unambiguous.
	const warmSweep = `{"platform":"gpu","model":"gpt2-small","seq":1024,"layer_counts":[2,4],"batches":[8,16]}`
	d1 := startDaemon(t, bin, "-data-dir", dataDir)
	resp, warmCold := d1.post(t, "/v1/sweep", warmSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep = %d: %s", resp.StatusCode, warmCold)
	}
	d1.drain(t)

	// Phase 2: restart with slow chunk.run faults — each chunk attempt
	// stalls 400ms, which guarantees the job is still unfinished when
	// the SIGKILL lands right after the 202.
	d2 := startDaemon(t, bin, "-data-dir", dataDir,
		"-allow-faults", "-fault-spec", `{"rules":[{"op":"chunk.run","kind":"slow","delay_ms":400}]}`)
	var batches []string
	for b := 1; b <= 300; b++ {
		batches = append(batches, fmt.Sprint(b))
	}
	jobBody := `{"platform":"wse","model":"gpt2-small","seq":1024,"layer_counts":[2],"batches":[` +
		strings.Join(batches, ",") + `]}`
	resp, body := d2.post(t, "/v1/jobs", jobBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit = %d: %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	d2.cmd.Wait()

	// Phase 3: clean restart over the same state. The journal replay
	// must revive the orphaned job and run it to completion.
	d3 := startDaemon(t, bin, "-data-dir", dataDir)
	deadline := time.Now().Add(60 * time.Second)
	var final jobs.View
	for {
		d3.get(t, "/v1/jobs/"+v.ID, &final)
		if final.State == jobs.StateDone {
			break
		}
		if final.State.Terminal() {
			t.Fatalf("replayed job ended as %s (%s), want done", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job stuck in %s", final.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.Done != 300 || final.FailedPoints != 0 {
		t.Errorf("replayed progress = %d done / %d failed, want 300/0", final.Done, final.FailedPoints)
	}

	// No duplicated or lost chunks: exactly 300 results, all labels
	// distinct, no quarantine manifest.
	var jr server.SweepResponse
	d3.get(t, "/v1/jobs/"+v.ID+"/result", &jr)
	if len(jr.Results) != 300 || len(jr.FailedChunks) != 0 {
		t.Fatalf("results/failed_chunks = %d/%d, want 300/0", len(jr.Results), len(jr.FailedChunks))
	}
	seen := make(map[string]bool, len(jr.Results))
	for _, r := range jr.Results {
		if seen[r.Label] {
			t.Fatalf("duplicate point %q in replayed job result", r.Label)
		}
		seen[r.Label] = true
	}

	// The store survived both the graceful drain and the SIGKILL: the
	// phase-1 sweep is answered byte-identically from disk, with all 4
	// points served as store hits (this process never computed them).
	resp, warmHot := d3.post(t, "/v1/sweep", warmSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery sweep = %d: %s", resp.StatusCode, warmHot)
	}
	if !bytes.Equal(warmCold, warmHot) {
		t.Errorf("store round-trip changed the sweep:\ncold: %s\nwarm: %s", warmCold, warmHot)
	}
	var stats server.Stats
	d3.get(t, "/v1/stats", &stats)
	if stats.Store == nil || stats.Store.Hits < 4 {
		t.Errorf("store stats after recovery = %+v, want >= 4 hits", stats.Store)
	}
	if stats.Jobs == nil || stats.Jobs.Replayed < 1 {
		t.Errorf("jobs gauges after recovery = %+v, want a replayed job", stats.Jobs)
	}
	d3.drain(t)
}

// TestFaultSpecRefusedWithoutAcknowledgement: the injector must be
// impossible to arm by accident.
func TestFaultSpecRefusedWithoutAcknowledgement(t *testing.T) {
	err := run([]string{"-fault-spec", `{"rules":[{"op":"store.write","kind":"EIO"}]}`})
	if err == nil || !strings.Contains(err.Error(), "-allow-faults") {
		t.Errorf("unacknowledged -fault-spec: err = %v, want a refusal naming -allow-faults", err)
	}
	// With the acknowledgement, a malformed spec still fails loudly.
	if err := run([]string{"-allow-faults", "-fault-spec", `{"rules":[]}`}); err == nil ||
		!strings.Contains(err.Error(), "no rules") {
		t.Errorf("empty spec: err = %v, want a parse error", err)
	}
}
