// Command dabenchd serves the DABench-LLM pipeline as a long-lived
// HTTP JSON API. Unlike the one-shot dabench CLI, the daemon's
// graph/compile/run caches live as long as the process: identical
// specs coalesce across requests and warm experiment renders cost
// cache lookups, not simulation.
//
// Usage:
//
//	dabenchd [-addr :8080] [-parallel N] [-max-inflight M]
//	         [-timeout 2m] [-drain-timeout 15s] [-max-sweep-points 1024]
//	         [-data-dir DIR] [-store-budget BYTES] [-resp-cache-budget BYTES]
//	         [-job-workers N] [-max-job-points 1048576]
//	         [-chunk-retries 3] [-chunk-retry-backoff 50ms]
//	         [-allow-faults -fault-spec SPEC]
//	         [-node-id NAME -peers id=url,... [-advertise URL]]
//	         [-gossip-interval 1s] [-peer-timeout 500ms]
//	         [-stage-log FILE] [-version]
//
// Clustering: -peers (with -node-id and -data-dir) joins the daemon to
// a static fleet. Nodes poll each other's /v1/gossip for health, store
// gauges and provenance chain tips; a local store miss consults a
// consistent-hash ring and fetches the framed blob from a peer (GET
// /v1/blobs/{addr}) before falling back to simulation, adopting what it
// fetched; async job chunks shard across live peers (POST /v1/chunks)
// with local reassignment when an owner fails. Every peer interaction
// is breaker-guarded and timeout-bounded — a dead peer degrades the
// fleet to single-node behavior, never breaks it. See DESIGN.md
// "Cluster fabric".
//
// Observability: GET /metrics renders every internal counter plus
// per-request stage and per-platform pipeline latency histograms in
// Prometheus text exposition; each served response carries a
// Server-Timing header with its stage breakdown, and -stage-log
// appends the same breakdown as one CSV row per request. With
// -data-dir every store blob write also appends to a hash-linked
// provenance chain at DIR/provenance.log (GET /v1/provenance/{addr}
// looks records up; `dabench provenance verify` audits the chain
// offline). A chain that fails verification at startup is fatal.
//
// Repeat requests ride the warm serve path: responses carry strong
// ETags (If-None-Match revalidation answers 304 with no body and no
// simulation slot), and the response-byte cache — bounded by
// -resp-cache-budget, negative to disable — serves warm /v1/run,
// /v1/sweep and scenario bodies as pre-marshaled bytes with zero JSON
// work. With -data-dir the store's framed blobs keep those bytes
// across restarts.
//
// For resilience testing the daemon can run with deliberate fault
// injection: -fault-spec takes a JSON spec (inline or a file path)
// describing which internal operations fail, how, and how often, and
// refuses to load unless -allow-faults acknowledges the intent. Under
// injected faults the daemon degrades rather than fails: store I/O is
// retried and circuit-broken, failing job chunks are retried then
// quarantined into a failed_chunks manifest, and /healthz reports
// per-component degraded state. See DESIGN.md "Failure model".
//
// With -data-dir the daemon is durable: compile/run results persist in
// a content-addressed store under DIR/store (so a restart answers
// repeat specs with zero simulation), and async /v1/jobs state is
// journaled under DIR/jobs (so a restart resumes interrupted jobs).
// Without it everything lives and dies with the process.
//
// Beyond single runs, sweeps and the paper's experiment artifacts, the
// daemon executes declarative multi-platform scenarios: GET
// /v1/scenarios lists the built-in library, GET /v1/scenarios/{name}
// runs one, and POST /v1/scenarios executes an arbitrary scenario
// document — synchronously under -max-sweep-points, as an async job
// above it.
//
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// in-flight requests run to completion (bounded by -drain-timeout),
// the job manager stops, and the store flushes. See API.md for the
// endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"dabench/internal/cluster"
	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/provenance"
	"dabench/internal/server"
	"dabench/internal/store"
	"dabench/internal/sweep"
	"dabench/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dabenchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dabenchd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size (1 = serial)")
	maxInflight := fs.Int("max-inflight", 0, "admitted concurrent heavy requests (0 = 2x -parallel)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request deadline")
	drain := fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown bound after SIGTERM")
	maxPoints := fs.Int("max-sweep-points", 1024, "hard cap on one /v1/sweep cross product")
	dataDir := fs.String("data-dir", "", "durable state directory (result store + job journal); empty = RAM only")
	storeBudget := fs.Int64("store-budget", 256<<20, "result-store on-disk byte budget (LRU eviction; <= 0 = unbounded)")
	respBudget := fs.Int64("resp-cache-budget", 32<<20, "in-memory response-byte cache budget (LRU eviction; < 0 = disabled)")
	jobWorkers := fs.Int("job-workers", 0, "background sweep pool size for async jobs (0 = half of -parallel)")
	maxJobPoints := fs.Int("max-job-points", 1<<20, "hard cap on one /v1/jobs cross product")
	chunkRetries := fs.Int("chunk-retries", 0, "attempts per failed job chunk before quarantine (0 = default 3)")
	chunkBackoff := fs.Duration("chunk-retry-backoff", 0, "initial backoff between chunk attempts (0 = default 50ms)")
	faultSpec := fs.String("fault-spec", "", "fault-injection spec: inline JSON or a file path (requires -allow-faults)")
	allowFaults := fs.Bool("allow-faults", false, "acknowledge that -fault-spec deliberately injects failures")
	stageLog := fs.String("stage-log", "", "append per-request stage timings as CSV rows to this file")
	nodeID := fs.String("node-id", "", "this node's cluster name (required with -peers)")
	peers := fs.String("peers", "", "static cluster peers as id=url,id=url (requires -node-id and -data-dir)")
	advertise := fs.String("advertise", "", "base URL peers reach this node at (advertised in gossip)")
	gossipInterval := fs.Duration("gossip-interval", time.Second, "peer health-poll period")
	peerTimeout := fs.Duration("peer-timeout", 500*time.Millisecond, "per-peer gossip/blob-fetch deadline")
	showVersion := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println("dabenchd", version.Version)
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *parallel < 1 || *parallel > sweep.MaxWorkers {
		return fmt.Errorf("-parallel must be in [1, %d], got %d", sweep.MaxWorkers, *parallel)
	}
	if *maxInflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0, got %d", *maxInflight)
	}
	if *timeout <= 0 || *drain <= 0 {
		return errors.New("-timeout and -drain-timeout must be positive")
	}
	if *maxPoints < 1 {
		return fmt.Errorf("-max-sweep-points must be >= 1, got %d", *maxPoints)
	}
	if *jobWorkers < 0 || *jobWorkers > sweep.MaxWorkers {
		return fmt.Errorf("-job-workers must be in [0, %d], got %d", sweep.MaxWorkers, *jobWorkers)
	}
	if *maxJobPoints < 1 {
		return fmt.Errorf("-max-job-points must be >= 1, got %d", *maxJobPoints)
	}
	if *chunkRetries < 0 {
		return fmt.Errorf("-chunk-retries must be >= 0, got %d", *chunkRetries)
	}
	if *peers == "" && *nodeID != "" {
		return errors.New("-node-id without -peers names a cluster of one; drop it or add -peers")
	}

	// The injector deliberately breaks things; a daemon must never pick
	// one up by accident (a stale wrapper script, a copy-pasted unit
	// file), so the spec refuses to load without the explicit -allow-faults
	// acknowledgement.
	var inj *faults.Injector
	if *faultSpec != "" {
		if !*allowFaults {
			return errors.New("-fault-spec injects failures on purpose; pass -allow-faults to confirm")
		}
		var err error
		if inj, err = faults.Load(*faultSpec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dabenchd: FAULT INJECTION ACTIVE (%d rules, seed %d)\n",
			len(inj.Stats().Rules), inj.Stats().Seed)
	}

	// The cluster fabric validates before any state opens: a typo in
	// -peers must fail the boot, not strand a half-configured node in the
	// fleet.
	var fab *cluster.Fabric
	if *peers != "" {
		if *nodeID == "" {
			return errors.New("-peers requires -node-id (every fleet member needs a unique ring name)")
		}
		if *dataDir == "" {
			return errors.New("-peers requires -data-dir (peer-fetched blobs adopt into the durable store)")
		}
		pcs, err := cluster.ParsePeers(*peers)
		if err != nil {
			return err
		}
		if fab, err = cluster.New(cluster.Config{
			NodeID: *nodeID, SelfURL: *advertise, Peers: pcs,
			GossipInterval: *gossipInterval, FetchTimeout: *peerTimeout,
			Injector: inj,
		}); err != nil {
			return err
		}
	}

	sweep.SetDefaultWorkers(*parallel)
	inflight := *maxInflight
	if inflight == 0 {
		inflight = 2 * *parallel
	}

	cfg := server.Config{
		MaxInFlight:       inflight,
		RequestTimeout:    *timeout,
		MaxSweepPoints:    *maxPoints,
		RespCacheBudget:   *respBudget,
		JobSweepWorkers:   *jobWorkers,
		MaxJobPoints:      *maxJobPoints,
		ChunkRetries:      *chunkRetries,
		ChunkRetryBackoff: *chunkBackoff,
		Injector:          inj,
		StageLogPath:      *stageLog,
	}
	// The one injector reaches every hook tier: the store's I/O sites
	// (via Options), the compile path (via the experiments seam), and
	// the job journal + chunk executor (via server.Config above).
	experiments.SetFaultInjector(inj)
	defer experiments.SetFaultInjector(nil)
	if *dataDir != "" {
		// The provenance chain opens before the store so its Close defers
		// after the store's flush — the last write-behind blobs append
		// before the chain file closes. A chain that fails verification
		// is a fatal startup error on purpose: tamper evidence that gets
		// silently rebuilt is not evidence.
		prov, err := provenance.Open(filepath.Join(*dataDir, "provenance.log"))
		if err != nil {
			return fmt.Errorf("provenance chain at %s is broken — investigate before serving (or move the file aside to start a fresh chain): %w",
				filepath.Join(*dataDir, "provenance.log"), err)
		}
		defer prov.Close()
		st, err := store.OpenOptions(filepath.Join(*dataDir, "store"),
			store.Options{Budget: *storeBudget, Injector: inj,
				OnWrite: func(ev store.WriteEvent) {
					prov.Append(ev.Addr, ev.Platform, ev.SpecKey, store.PipelineVersion)
				}})
		if err != nil {
			return err
		}
		defer st.Close() // flush the write-behind queue on the way out
		if fab != nil {
			// With a fabric, the memo tiers miss into the peer-fetch wrapper
			// instead of the bare store: a spec any fleet member computed is
			// warm here after one bounded peer fetch.
			experiments.SetResultStore(fab.WrapStore(st))
		} else {
			experiments.SetResultStore(st)
		}
		defer experiments.SetResultStore(nil)
		cfg.Store = st
		cfg.Provenance = prov
		cfg.JobsDir = filepath.Join(*dataDir, "jobs")
		fmt.Fprintf(os.Stderr, "dabenchd: durable state in %s (%d store entries warm, budget %d bytes, provenance chain at %d records)\n",
			*dataDir, st.Stats().Entries, *storeBudget, prov.Stats().Records)
	}
	cfg.Cluster = fab
	h, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer h.Close()
	if fab != nil {
		fab.Start()
		defer fab.Close() // before the store flush: no gossip against closing state
		fmt.Fprintf(os.Stderr, "dabenchd: cluster fabric up as %s (%d peers, gossip every %s)\n",
			*nodeID, len(fab.Stats().Peers), *gossipInterval)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dabenchd: listening on %s (%d workers, %d in-flight slots)\n",
		ln.Addr(), *parallel, inflight)

	select {
	case err := <-errCh:
		return err // Serve never returns nil
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "dabenchd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
