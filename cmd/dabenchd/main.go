// Command dabenchd serves the DABench-LLM pipeline as a long-lived
// HTTP JSON API. Unlike the one-shot dabench CLI, the daemon's
// graph/compile/run caches live as long as the process: identical
// specs coalesce across requests and warm experiment renders cost
// cache lookups, not simulation.
//
// Usage:
//
//	dabenchd [-addr :8080] [-parallel N] [-max-inflight M]
//	         [-timeout 2m] [-drain-timeout 15s] [-max-sweep-points 1024]
//
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// in-flight requests run to completion (bounded by -drain-timeout),
// then the process exits. See API.md for the endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dabench/internal/server"
	"dabench/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dabenchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dabenchd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size (1 = serial)")
	maxInflight := fs.Int("max-inflight", 0, "admitted concurrent heavy requests (0 = 2x -parallel)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request deadline")
	drain := fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown bound after SIGTERM")
	maxPoints := fs.Int("max-sweep-points", 1024, "hard cap on one /v1/sweep cross product")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *parallel < 1 || *parallel > sweep.MaxWorkers {
		return fmt.Errorf("-parallel must be in [1, %d], got %d", sweep.MaxWorkers, *parallel)
	}
	if *maxInflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0, got %d", *maxInflight)
	}
	if *timeout <= 0 || *drain <= 0 {
		return errors.New("-timeout and -drain-timeout must be positive")
	}
	if *maxPoints < 1 {
		return fmt.Errorf("-max-sweep-points must be >= 1, got %d", *maxPoints)
	}

	sweep.SetDefaultWorkers(*parallel)
	inflight := *maxInflight
	if inflight == 0 {
		inflight = 2 * *parallel
	}
	h := server.New(server.Config{
		MaxInFlight:    inflight,
		RequestTimeout: *timeout,
		MaxSweepPoints: *maxPoints,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dabenchd: listening on %s (%d workers, %d in-flight slots)\n",
		ln.Addr(), *parallel, inflight)

	select {
	case err := <-errCh:
		return err // Serve never returns nil
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "dabenchd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
